package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/tensor"
)

// Env owns the datasets and trained models an experiment run needs.
// Trained model states are cached in memory and, when CacheDir is set,
// on disk keyed by a hash of the full Scale — so regenerating a table
// reuses every previously trained model.
type Env struct {
	Scale    Scale
	CacheDir string
	// Sink receives every run event the environment's training and
	// evaluation work emits, plus cache.hit/miss/write trace events
	// (nil → obs.Null). Events never perturb results.
	Sink obs.Sink

	// Ckpt, when set, gives every training run a crash-safe checkpoint
	// directory keyed by its cache key, so a killed sweep resumes at
	// the last epoch boundary instead of the last finished model. A
	// run's checkpoints are deleted once its model reaches the cache —
	// the cache entry supersedes them. CkptEvery is the epoch interval
	// between writes (<=0 → every epoch).
	Ckpt      *ckpt.Store
	CkptEvery int

	// Scenario selects the fault scenario every training injection and
	// defect evaluation in this environment uses (nil → the default
	// "chen" scenario, preserving all legacy outputs byte-identically).
	// FT models trained under a non-default scenario get their own
	// cache keys; scenario-independent models (pretrained, pruned
	// without FT) are shared across scenarios.
	Scenario fault.Scenario

	datasets map[string][2]*data.Dataset
	nets     map[string]*nn.Network
}

// NewEnv creates an environment for the given preset. sink may be nil
// for a silent run; callers migrating from the old
// `logf func(string, ...any)` parameter can wrap their closure with
// obs.LogfSink.
func NewEnv(preset, cacheDir string, sink obs.Sink) *Env {
	return &Env{
		Scale:    ScaleFor(preset),
		CacheDir: cacheDir,
		Sink:     sink,
		datasets: map[string][2]*data.Dataset{},
		nets:     map[string]*nn.Network{},
	}
}

// sink resolves the environment's sink (nil → obs.Null).
func (e *Env) sink() obs.Sink { return obs.Or(e.Sink) }

func (e *Env) logf(format string, args ...any) {
	obs.Logf(e.Sink, format, args...)
}

// Dataset returns the train/test split for "c10" or "c100". The
// "paper" preset loads real CIFAR binaries from data/cifar10 or
// data/cifar100 when present, falling back to the synthetic generator.
func (e *Env) Dataset(name string) (train, test *data.Dataset) {
	if pair, ok := e.datasets[name]; ok {
		return pair[0], pair[1]
	}
	var cfg data.SynthConfig
	switch name {
	case "c10":
		cfg = e.Scale.C10
	case "c100":
		cfg = e.Scale.C100
	default:
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
	if e.Scale.Name == "paper" {
		var err error
		if name == "c10" {
			train, test, err = data.LoadCIFAR10Dir("data/cifar10")
		} else {
			train, test, err = data.LoadCIFAR100Dir("data/cifar100")
		}
		if err == nil {
			e.logf("loaded real %s from disk (%d train / %d test)", name, train.N(), test.N())
			e.datasets[name] = [2]*data.Dataset{train, test}
			return train, test
		}
		e.logf("real %s unavailable (%v); generating synthetic substitute", name, err)
	}
	train, test = data.Generate(cfg)
	e.datasets[name] = [2]*data.Dataset{train, test}
	return train, test
}

// buildModel constructs the (untrained) architecture for a dataset.
func (e *Env) buildModel(ds string) *nn.Network {
	s := e.Scale
	switch ds {
	case "c10":
		cfg := models.ResNetConfig{Depth: s.DepthC10, Classes: s.C10.Classes, InChannels: 3, WidthMult: s.Width, Seed: s.Seed}
		return models.BuildResNet(cfg)
	case "c100":
		cfg := models.ResNetConfig{Depth: s.DepthC100, Classes: s.C100.Classes, InChannels: 3, WidthMult: s.Width, Seed: s.Seed}
		return models.BuildResNet(cfg)
	default:
		panic(fmt.Sprintf("experiments: unknown dataset %q", ds))
	}
}

// scaleHash folds the full Scale into the cache key so stale caches
// from a different configuration are never reused. Workers is
// normalized out: parallelism is bit-deterministic, so a model trained
// at any worker count is valid for every other.
func (e *Env) scaleHash() uint64 {
	s := e.Scale
	s.Workers = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", s)
	return h.Sum64()
}

// cached returns the model registered under key, training it with
// train() (starting from build()) on a miss. Disk cache is consulted
// when CacheDir is set; writes go through a temp file + rename so an
// interrupt mid-write can never leave a corrupt cache entry, and a
// canceled training run is never cached at all.
// tierKey suffixes cache keys with the active numerics tier when it
// is not exact: models trained under fast kernels must never be served
// from (or poison) the exact cache, whose entries back byte-identity
// contracts. Applied centrally here so every Env getter inherits it.
func tierKey(key string) string {
	if tensor.ActiveNumerics() == tensor.NumericsFast {
		return key + "+fast"
	}
	return key
}

func (e *Env) cached(key string, build func() *nn.Network, train func(net *nn.Network) error) (*nn.Network, error) {
	key = tierKey(key)
	if net, ok := e.nets[key]; ok {
		return net, nil
	}
	sink := e.sink()
	path := ""
	if e.CacheDir != "" {
		path = filepath.Join(e.CacheDir, fmt.Sprintf("%s-%016x.gob", key, e.scaleHash()))
		if f, err := os.Open(path); err == nil {
			net := build()
			err = net.Load(f)
			f.Close()
			if err == nil {
				if sink.Enabled() {
					sink.Emit(obs.Event{Kind: obs.KindCacheHit, Key: key})
				}
				e.nets[key] = net
				return net, nil
			}
			e.logf("cache for %s unreadable (%v); retraining", key, err)
		}
	}
	net := build()
	if sink.Enabled() {
		sink.Emit(obs.Event{Kind: obs.KindCacheMiss, Key: key})
	}
	if err := train(net); err != nil {
		return nil, err
	}
	e.nets[key] = net
	if path != "" {
		e.writeCache(path, key, net)
	}
	// The finished model supersedes its training checkpoints (including
	// any per-phase "key.*" runs); drop them so a later resumed sweep
	// does not replay a completed run from stale state.
	if e.Ckpt != nil {
		e.Ckpt.ClearKey(key)
	}
	return net, nil
}

// writeCache persists net atomically: the gob is written to a temp
// file in the cache directory and renamed into place only on success,
// so readers never observe a truncated entry.
func (e *Env) writeCache(path, key string, net *nn.Network) {
	if err := os.MkdirAll(e.CacheDir, 0o755); err != nil {
		return
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	err = net.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		e.logf("cache write for %s failed: %v", key, err)
		os.Remove(tmp)
		return
	}
	if s := e.sink(); s.Enabled() {
		s.Emit(obs.Event{Kind: obs.KindCacheWrite, Key: key})
	}
}

// trainCfg builds the shared training configuration. key names the
// training run for crash-safe checkpointing (distinct per cached model
// and, for multi-phase recipes, per phase via a "." suffix); it is
// ignored unless e.Ckpt is set.
func (e *Env) trainCfg(key string, epochs int, lr float64, seed uint64) core.Config {
	s := e.Scale
	cfg := core.Config{
		Epochs: epochs, Batch: s.Batch,
		LR: lr, Momentum: s.Momentum, WeightDecay: s.WeightDecay,
		Aug: s.Aug, Seed: seed, Sink: e.Sink,
		Scenario: e.Scenario,
	}
	if e.Ckpt != nil {
		// Same tier suffix as cached(): checkpoint runs must pair with
		// the cache entry they feed, so cached()'s ClearKey finds them.
		cfg.Ckpt = e.Ckpt.Run(tierKey(key))
		cfg.CkptEvery = e.CkptEvery
	}
	return cfg
}

// scenarioSuffix is the cache-key suffix of FT models whose training
// injection depends on the environment's scenario: empty for the
// default scenario — so every pre-existing cache entry and checkpoint
// stays valid — and a spec-derived tag otherwise.
func (e *Env) scenarioSuffix() string {
	if e.Scenario == nil {
		return ""
	}
	spec := e.Scenario.Spec()
	if spec == fault.Default().Spec() {
		return ""
	}
	return fmt.Sprintf("+sc%d", hash64(spec))
}

// Pretrained returns the baseline well-trained model for a dataset
// (the Acc_pretrain model of Figure 1).
func (e *Env) Pretrained(ctx context.Context, ds string) (*nn.Network, error) {
	train, _ := e.Dataset(ds)
	key := "pretrain-" + ds
	return e.cached(key, func() *nn.Network { return e.buildModel(ds) },
		func(net *nn.Network) error {
			_, err := core.Train(ctx, net, train, e.trainCfg(key, e.Scale.PretrainEpochs, e.Scale.LR, e.Scale.Seed))
			return err
		})
}

// OneShot returns the one-shot stochastic FT model retrained from the
// pretrained baseline at training rate Psa^T.
func (e *Env) OneShot(ctx context.Context, ds string, rate float64) (*nn.Network, error) {
	train, _ := e.Dataset(ds)
	key := fmt.Sprintf("oneshot-%s-%g%s", ds, rate, e.scenarioSuffix())
	return e.cached(key, func() *nn.Network { return e.buildModel(ds) },
		func(net *nn.Network) error {
			base, err := e.Pretrained(ctx, ds)
			if err != nil {
				return err
			}
			mustRestore(net, base)
			cfg := e.trainCfg(key, e.Scale.FTEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key))
			_, err = core.OneShotFT(ctx, net, train, cfg, rate)
			return err
		})
}

// Progressive returns the progressive stochastic FT model retrained
// from the pretrained baseline up the ladder ending at Psa^T.
func (e *Env) Progressive(ctx context.Context, ds string, rate float64) (*nn.Network, error) {
	train, _ := e.Dataset(ds)
	key := fmt.Sprintf("prog-%s-%g%s", ds, rate, e.scenarioSuffix())
	return e.cached(key, func() *nn.Network { return e.buildModel(ds) },
		func(net *nn.Network) error {
			base, err := e.Pretrained(ctx, ds)
			if err != nil {
				return err
			}
			mustRestore(net, base)
			cfg := e.trainCfg(key, e.Scale.FTEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key))
			ladder := core.Ladder(rate, e.Scale.ProgRungs)
			_, err = core.ProgressiveFT(ctx, net, train, cfg, ladder, e.Scale.ProgEpochsPerStage)
			return err
		})
}

// PrunedMagnitude returns the one-shot magnitude-pruned (and
// fine-tuned) model at the given sparsity (Han et al. [27]).
func (e *Env) PrunedMagnitude(ctx context.Context, ds string, sparsity float64) (*nn.Network, error) {
	train, _ := e.Dataset(ds)
	key := fmt.Sprintf("mag-%s-%g", ds, sparsity)
	return e.cached(key, func() *nn.Network { return e.buildModel(ds) },
		func(net *nn.Network) error {
			base, err := e.Pretrained(ctx, ds)
			if err != nil {
				return err
			}
			mustRestore(net, base)
			prune.MagnitudePrune(net.WeightParams(), sparsity, false)
			_, err = core.Train(ctx, net, train, e.trainCfg(key, e.Scale.FinetuneEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key)))
			return err
		})
}

// PrunedADMM returns the ADMM-pruned (and fine-tuned) model at the
// given sparsity (Zhang et al. [12]).
func (e *Env) PrunedADMM(ctx context.Context, ds string, sparsity float64) (*nn.Network, error) {
	train, _ := e.Dataset(ds)
	key := fmt.Sprintf("admm-%s-%g", ds, sparsity)
	return e.cached(key, func() *nn.Network { return e.buildModel(ds) },
		func(net *nn.Network) error {
			base, err := e.Pretrained(ctx, ds)
			if err != nil {
				return err
			}
			mustRestore(net, base)
			admm := prune.NewADMM(net.WeightParams(), sparsity, e.Scale.ADMMRho)
			cfg := e.trainCfg(key+".admm", e.Scale.ADMMEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key))
			cfg.ADMM = admm
			cfg.ADMMInterval = 2
			if _, err := core.Train(ctx, net, train, cfg); err != nil {
				return err
			}
			admm.Finalize()
			_, err = core.Train(ctx, net, train, e.trainCfg(key+".ft", e.Scale.FinetuneEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key)+1))
			return err
		})
}

// PrunedFT returns the ADMM-pruned model after stochastic FT
// retraining (one-shot or progressive) at the given rate — the
// Table II lower section.
func (e *Env) PrunedFT(ctx context.Context, ds string, sparsity, rate float64, progressive bool) (*nn.Network, error) {
	train, _ := e.Dataset(ds)
	method := "os"
	if progressive {
		method = "prog"
	}
	key := fmt.Sprintf("admmft-%s-%g-%s-%g%s", ds, sparsity, method, rate, e.scenarioSuffix())
	return e.cached(key, func() *nn.Network { return e.buildModel(ds) },
		func(net *nn.Network) error {
			base, err := e.PrunedADMM(ctx, ds, sparsity)
			if err != nil {
				return err
			}
			mustRestore(net, base)
			cfg := e.trainCfg(key, e.Scale.FTEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key))
			if progressive {
				_, err = core.ProgressiveFT(ctx, net, train, cfg, core.Ladder(rate, e.Scale.ProgRungs), e.Scale.ProgEpochsPerStage)
			} else {
				_, err = core.OneShotFT(ctx, net, train, cfg, rate)
			}
			return err
		})
}

// DropConnect returns the drop-connect FT model retrained from the
// pretrained baseline with per-batch drop rate `drop`. The scheme
// fixes its own ("drop") scenario, so the cached model is shared
// across environment scenarios.
func (e *Env) DropConnect(ctx context.Context, ds string, drop float64) (*nn.Network, error) {
	train, _ := e.Dataset(ds)
	key := fmt.Sprintf("dropconnect-%s-%g", ds, drop)
	return e.cached(key, func() *nn.Network { return e.buildModel(ds) },
		func(net *nn.Network) error {
			base, err := e.Pretrained(ctx, ds)
			if err != nil {
				return err
			}
			mustRestore(net, base)
			cfg := e.trainCfg(key, e.Scale.FTEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key))
			cfg.Scenario = nil // DropConnectFT installs the drop scenario
			_, err = core.DropConnectFT(ctx, net, train, cfg, drop)
			return err
		})
}

// DefectEval returns the evaluation protocol at this scale, under the
// environment's scenario.
func (e *Env) DefectEval() core.DefectEval {
	return core.DefectEval{
		Runs: e.Scale.DefectRuns, Batch: 128,
		Seed: e.Scale.Seed * 31, Workers: e.Scale.Workers,
		Sink: e.Sink, Scenario: e.Scenario,
	}
}

// mustRestore copies src's state into dst (architectures must match).
func mustRestore(dst, src *nn.Network) {
	if err := dst.Restore(src.Snapshot()); err != nil {
		panic(fmt.Sprintf("experiments: restore failed: %v", err))
	}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64() % 1_000_000
}
