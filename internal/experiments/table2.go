package experiments

import (
	"context"
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/report"
)

// Table2Row is one Table II row: a model's three accuracy stages plus
// Stability Scores at the SS rates.
type Table2Row struct {
	Label       string
	AccPretrain float64 // percent
	AccRetrain  float64
	AccDefect   []float64 // per SS rate, percent
	SS          []float64
}

// Table2Section groups rows derived from one base model (pretrained or
// ADMM-pruned).
type Table2Section struct {
	Title string
	Rows  []Table2Row
}

// Table2Result reproduces Table II: accuracy and Stability Score of FT
// models derived from the pretrained and the ADMM-pruned backbone.
type Table2Result struct {
	Dataset  string
	Sparsity float64
	SSRates  []float64
	Sections []Table2Section
}

// table2FTRates is the Psa^T subset Table II evaluates.
var table2FTRates = []float64{0.01, 0.05, 0.1}

// Table2 runs the full Table II protocol on the 100-class task with
// the highest configured sparsity (70% in the paper). On cancellation
// the sections completed so far are returned together with ctx's error.
func Table2(ctx context.Context, e *Env) (*Table2Result, error) {
	ds := "c100"
	_, test := e.Dataset(ds)
	ev := e.DefectEval()
	sparsity := e.Scale.Sparsities[len(e.Scale.Sparsities)-1]

	res := &Table2Result{Dataset: ds, Sparsity: sparsity, SSRates: e.Scale.SSRates}

	makeRow := func(label string, net *nn.Network, accPre float64) (Table2Row, error) {
		rep, err := core.Stability(ctx, net, test, accPre, e.Scale.SSRates, ev)
		if err != nil {
			return Table2Row{}, err
		}
		row := Table2Row{
			Label:       label,
			AccPretrain: accPre * 100,
			AccRetrain:  rep.AccRetrain * 100,
		}
		for i := range rep.Rates {
			row.AccDefect = append(row.AccDefect, rep.AccDefect[i]*100)
			// SS is unit-free; recompute on percent to match the paper.
			row.SS = append(row.SS, rep.SS[i])
		}
		return row, nil
	}

	// addRows builds one section from a base accuracy plus a list of
	// (label, model-getter) pairs, stopping at the first error.
	type variant struct {
		label string
		net   func() (*nn.Network, error)
	}
	addRows := func(title string, accPre float64, variants []variant) error {
		sec := Table2Section{Title: title}
		for _, v := range variants {
			net, err := v.net()
			if err != nil {
				return err
			}
			row, err := makeRow(v.label, net, accPre)
			if err != nil {
				return err
			}
			sec.Rows = append(sec.Rows, row)
		}
		res.Sections = append(res.Sections, sec)
		return nil
	}

	// Section 1: FT models derived from the dense pretrained model.
	base, err := e.Pretrained(ctx, ds)
	if err != nil {
		return res, err
	}
	accPre := core.EvalClean(base, test, ev.Batch)
	vars1 := []variant{{"Baseline (no FT)", func() (*nn.Network, error) { return base, nil }}}
	for _, rate := range table2FTRates {
		rate := rate
		vars1 = append(vars1, variant{fmt.Sprintf("One-Shot Psa^T=%g", rate),
			func() (*nn.Network, error) { return e.OneShot(ctx, ds, rate) }})
	}
	for _, rate := range table2FTRates {
		rate := rate
		vars1 = append(vars1, variant{fmt.Sprintf("Progressive Psa^T=%g", rate),
			func() (*nn.Network, error) { return e.Progressive(ctx, ds, rate) }})
	}
	if err := addRows(fmt.Sprintf("Pretrained backbone (accuracy = %.2f%%)", accPre*100), accPre, vars1); err != nil {
		return res, err
	}

	// Section 2: FT models derived from the ADMM-pruned model.
	pruned, err := e.PrunedADMM(ctx, ds, sparsity)
	if err != nil {
		return res, err
	}
	accPruned := core.EvalClean(pruned, test, ev.Batch)
	vars2 := []variant{{"Baseline pruned (no FT)", func() (*nn.Network, error) { return pruned, nil }}}
	for _, rate := range table2FTRates {
		rate := rate
		vars2 = append(vars2, variant{fmt.Sprintf("One-Shot Psa^T=%g", rate),
			func() (*nn.Network, error) { return e.PrunedFT(ctx, ds, sparsity, rate, false) }})
	}
	for _, rate := range table2FTRates {
		rate := rate
		vars2 = append(vars2, variant{fmt.Sprintf("Progressive Psa^T=%g", rate),
			func() (*nn.Network, error) { return e.PrunedFT(ctx, ds, sparsity, rate, true) }})
	}
	if err := addRows(fmt.Sprintf("ADMM-pruned backbone, %.0f%% sparsity (accuracy = %.2f%%)",
		sparsity*100, accPruned*100), accPruned, vars2); err != nil {
		return res, err
	}
	return res, nil
}

// Table renders the result in the paper's Table II layout.
func (r *Table2Result) Table() *report.Table {
	header := []string{"Method", "AccPre", "AccRetrain"}
	for _, rate := range r.SSRates {
		header = append(header, fmt.Sprintf("AccDef(%g)", rate))
	}
	for _, rate := range r.SSRates {
		header = append(header, fmt.Sprintf("SS(%g)", rate))
	}
	t := report.NewTable(
		fmt.Sprintf("Table II (%s): accuracy and Stability Score, pretrained vs ADMM-pruned (%.0f%%)",
			r.Dataset, r.Sparsity*100),
		header...)
	for _, sec := range r.Sections {
		t.AddRow("— " + sec.Title)
		for _, row := range sec.Rows {
			cells := []string{row.Label,
				fmt.Sprintf("%.2f", row.AccPretrain),
				fmt.Sprintf("%.2f", row.AccRetrain)}
			for _, a := range row.AccDefect {
				cells = append(cells, fmt.Sprintf("%.2f", a))
			}
			for _, s := range row.SS {
				cells = append(cells, formatSS(s))
			}
			t.AddRow(cells...)
		}
	}
	return t
}

func formatSS(v float64) string {
	if v > 1e6 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
