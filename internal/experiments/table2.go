package experiments

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/report"
)

// Table2Row is one Table II row: a model's three accuracy stages plus
// Stability Scores at the SS rates.
type Table2Row struct {
	Label       string
	AccPretrain float64 // percent
	AccRetrain  float64
	AccDefect   []float64 // per SS rate, percent
	SS          []float64
}

// Table2Section groups rows derived from one base model (pretrained or
// ADMM-pruned).
type Table2Section struct {
	Title string
	Rows  []Table2Row
}

// Table2Result reproduces Table II: accuracy and Stability Score of FT
// models derived from the pretrained and the ADMM-pruned backbone.
type Table2Result struct {
	Dataset  string
	Sparsity float64
	SSRates  []float64
	Sections []Table2Section
}

// table2FTRates is the Psa^T subset Table II evaluates.
var table2FTRates = []float64{0.01, 0.05, 0.1}

// Table2 runs the full Table II protocol on the 100-class task with
// the highest configured sparsity (70% in the paper).
func Table2(e *Env) *Table2Result {
	ds := "c100"
	_, test := e.Dataset(ds)
	ev := e.DefectEval()
	sparsity := e.Scale.Sparsities[len(e.Scale.Sparsities)-1]

	res := &Table2Result{Dataset: ds, Sparsity: sparsity, SSRates: e.Scale.SSRates}

	makeRow := func(label string, net *nn.Network, accPre float64) Table2Row {
		rep := core.Stability(net, test, accPre, e.Scale.SSRates, ev)
		row := Table2Row{
			Label:       label,
			AccPretrain: accPre * 100,
			AccRetrain:  rep.AccRetrain * 100,
		}
		for i := range rep.Rates {
			row.AccDefect = append(row.AccDefect, rep.AccDefect[i]*100)
			// SS is unit-free; recompute on percent to match the paper.
			row.SS = append(row.SS, rep.SS[i])
		}
		return row
	}

	// Section 1: FT models derived from the dense pretrained model.
	base := e.Pretrained(ds)
	accPre := core.EvalClean(base, test, ev.Batch)
	sec1 := Table2Section{Title: fmt.Sprintf("Pretrained backbone (accuracy = %.2f%%)", accPre*100)}
	sec1.Rows = append(sec1.Rows, makeRow("Baseline (no FT)", base, accPre))
	for _, rate := range table2FTRates {
		sec1.Rows = append(sec1.Rows,
			makeRow(fmt.Sprintf("One-Shot Psa^T=%g", rate), e.OneShot(ds, rate), accPre))
	}
	for _, rate := range table2FTRates {
		sec1.Rows = append(sec1.Rows,
			makeRow(fmt.Sprintf("Progressive Psa^T=%g", rate), e.Progressive(ds, rate), accPre))
	}
	res.Sections = append(res.Sections, sec1)

	// Section 2: FT models derived from the ADMM-pruned model.
	pruned := e.PrunedADMM(ds, sparsity)
	accPruned := core.EvalClean(pruned, test, ev.Batch)
	sec2 := Table2Section{Title: fmt.Sprintf("ADMM-pruned backbone, %.0f%% sparsity (accuracy = %.2f%%)",
		sparsity*100, accPruned*100)}
	sec2.Rows = append(sec2.Rows, makeRow("Baseline pruned (no FT)", pruned, accPruned))
	for _, rate := range table2FTRates {
		sec2.Rows = append(sec2.Rows,
			makeRow(fmt.Sprintf("One-Shot Psa^T=%g", rate), e.PrunedFT(ds, sparsity, rate, false), accPruned))
	}
	for _, rate := range table2FTRates {
		sec2.Rows = append(sec2.Rows,
			makeRow(fmt.Sprintf("Progressive Psa^T=%g", rate), e.PrunedFT(ds, sparsity, rate, true), accPruned))
	}
	res.Sections = append(res.Sections, sec2)
	return res
}

// Table renders the result in the paper's Table II layout.
func (r *Table2Result) Table() *report.Table {
	header := []string{"Method", "AccPre", "AccRetrain"}
	for _, rate := range r.SSRates {
		header = append(header, fmt.Sprintf("AccDef(%g)", rate))
	}
	for _, rate := range r.SSRates {
		header = append(header, fmt.Sprintf("SS(%g)", rate))
	}
	t := report.NewTable(
		fmt.Sprintf("Table II (%s): accuracy and Stability Score, pretrained vs ADMM-pruned (%.0f%%)",
			r.Dataset, r.Sparsity*100),
		header...)
	for _, sec := range r.Sections {
		t.AddRow("— " + sec.Title)
		for _, row := range sec.Rows {
			cells := []string{row.Label,
				fmt.Sprintf("%.2f", row.AccPretrain),
				fmt.Sprintf("%.2f", row.AccRetrain)}
			for _, a := range row.AccDefect {
				cells = append(cells, fmt.Sprintf("%.2f", a))
			}
			for _, s := range row.SS {
				cells = append(cells, formatSS(s))
			}
			t.AddRow(cells...)
		}
	}
	return t
}

func formatSS(v float64) string {
	if v > 1e6 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
