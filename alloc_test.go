//go:build !race

package ftpim

// Allocation-regression test for the defect-evaluation hot path: once
// the injector scratch and layer workspaces are warm, each Monte-Carlo
// run (inject → evaluate → undo, exactly the EvalDefect serial loop
// body) must stay within 2 heap allocations. Excluded under -race (the
// race runtime changes allocation behavior); tensor workers are pinned
// to 1 because spawning shard goroutines allocates.

import (
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/tensor"
)

func TestWarmDefectRunAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	cfg := data.SynthConfig{
		Classes: 5, TrainPer: 4, TestPer: 8,
		Channels: 3, Size: 8, Basis: 10, CoefNoise: 0.1,
		NoiseStd: 0.3, Seed: 11,
	}
	_, test := data.Generate(cfg)
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 5, Seed: 2})

	// Replicate the EvalDefect serial loop body (internal/core/eval.go)
	// around one long-lived injector, as EvalDefect itself holds one
	// across all runs of a call.
	inj := fault.NewInjector(fault.ChenModel(), core.WeightTensors(net))
	const psa = 0.05
	run := 0
	step := func() {
		lesion := inj.InjectRun(9, run, psa)
		metrics.Evaluate(net, test, 64)
		lesion.Undo()
		run++
	}
	// Warm-up: grow the lesion undo capacity and layer workspaces. The
	// flip count is random per run, so a generous warm-up makes later
	// capacity growth rare enough to stay inside the budget.
	for i := 0; i < 20; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(30, step); avg > 2 {
		t.Fatalf("warm defect-eval run allocates %.1f/op, budget is 2", avg)
	}
}

// TestWarmScenarioRunAllocs extends the 2-allocation budget to every
// registered fault scenario: the scenario abstraction must not cost
// the hot path anything. Persistent scenarios run the InjectRun loop;
// transient ones run the per-step loop (one lesion per forward pass,
// the warm inner loop of transient evaluation).
func TestWarmScenarioRunAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	cfg := data.SynthConfig{
		Classes: 5, TrainPer: 4, TestPer: 8,
		Channels: 3, Size: 8, Basis: 10, CoefNoise: 0.1,
		NoiseStd: 0.3, Seed: 11,
	}
	_, test := data.Generate(cfg)
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 5, Seed: 2})

	for _, spec := range fault.Names() {
		t.Run(spec, func(t *testing.T) {
			sc := fault.MustParse(spec)
			inj := sc.NewInjector(core.WeightTensors(net))
			const psa = 0.05
			run, step := 0, 0
			iter := func() {
				var lesion *fault.Lesion
				if sc.Transient() {
					lesion = inj.InjectStep(9, 0, step, psa)
					step++
				} else {
					lesion = inj.InjectRun(9, run, psa)
					run++
				}
				metrics.Evaluate(net, test, 64)
				lesion.Undo()
			}
			for i := 0; i < 20; i++ {
				iter()
			}
			if avg := testing.AllocsPerRun(30, iter); avg > 2 {
				t.Fatalf("warm %s run allocates %.1f/op, budget is 2", spec, avg)
			}
		})
	}
}
