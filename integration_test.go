package ftpim

// End-to-end integration tests: the full pipeline (data → model →
// pretrain → fault injection → FT retraining → defect evaluation →
// Stability Score → crossbar deployment) exercised through the public
// experiment harness at quick scale.

import (
	"context"
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/reram"
	"github.com/ftpim/ftpim/internal/tensor"
)

// bg is the context for tests that never cancel.
var bg = context.Background()

// TestEndToEndFigure1Story walks the paper's Figure 1 pipeline and
// checks every causal link at small scale.
func TestEndToEndFigure1Story(t *testing.T) {
	cfg := data.SynthConfig{
		Classes: 6, TrainPer: 40, TestPer: 20,
		Channels: 3, Size: 8, Basis: 12, CoefNoise: 0.1,
		NoiseStd: 0.3, ShiftMax: 1, JitterStd: 0.1, Seed: 21,
	}
	train, test := data.Generate(cfg)
	net := models.BuildResNet(models.ResNetConfig{Depth: 8, Classes: 6, InChannels: 3, WidthMult: 0.25, Seed: 42})
	tc := core.Config{Epochs: 8, Batch: 16, LR: 0.08, Momentum: 0.9, WeightDecay: 5e-4,
		Aug: data.Augment{Flip: true, ShiftMax: 1}, Seed: 1}

	// ① Pretraining beats chance comfortably.
	if _, err := core.Train(bg, net, train, tc); err != nil {
		t.Fatal(err)
	}
	accPre := core.EvalClean(net, test, 64)
	if accPre < 2.0/6 {
		t.Fatalf("pretrain acc %.3f too low", accPre)
	}

	// ③ Faults at a harsh rate collapse accuracy.
	ev := core.DefectEval{Runs: 10, Batch: 64, Seed: 5}
	const psa = 0.1
	cs, err := core.EvalDefect(bg, net, test, psa, ev)
	if err != nil {
		t.Fatal(err)
	}
	collapsed := cs.Mean
	if collapsed >= accPre-0.1 {
		t.Fatalf("10%% faults should hurt: %.3f vs clean %.3f", collapsed, accPre)
	}

	// ② FT retraining keeps reasonable ideal accuracy...
	ftc := tc
	ftc.LR = 0.04
	ftc.Epochs = 10
	if _, err := core.OneShotFT(bg, net, train, ftc, psa); err != nil {
		t.Fatal(err)
	}
	accRe := core.EvalClean(net, test, 64)
	if accRe < accPre-0.45 {
		t.Fatalf("FT ideal accuracy collapsed: %.3f vs %.3f", accRe, accPre)
	}
	// ...and ③' recovers defect accuracy.
	rs, err := core.EvalDefect(bg, net, test, psa, ev)
	if err != nil {
		t.Fatal(err)
	}
	recovered := rs.Mean
	if recovered <= collapsed {
		t.Fatalf("FT should beat baseline under faults: %.3f vs %.3f", recovered, collapsed)
	}
	// Stability Score improves.
	ssBase := metrics.StabilityScore(accPre, accPre, collapsed)
	ssFT := metrics.StabilityScore(accRe, accPre, recovered)
	if !math.IsInf(ssFT, 1) && ssFT <= ssBase {
		t.Fatalf("SS should improve: %.2f -> %.2f", ssBase, ssFT)
	}
}

// TestEndToEndCrossbarDeployment checks the digital → analog → faulty
// → repaired accuracy chain on the circuit simulator.
func TestEndToEndCrossbarDeployment(t *testing.T) {
	cfg := data.SynthConfig{
		Classes: 5, TrainPer: 30, TestPer: 16,
		Channels: 3, Size: 8, Basis: 10, CoefNoise: 0.1,
		NoiseStd: 0.3, ShiftMax: 1, JitterStd: 0.1, Seed: 22,
	}
	train, test := data.Generate(cfg)
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 5, Seed: 2})
	if _, err := core.Train(bg, net, train, core.Config{Epochs: 6, Batch: 16, LR: 0.05, Momentum: 0.9, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	clean := metrics.Evaluate(net, test, 64)

	opts := reram.MapOptions{TileRows: 32, TileCols: 32, Levels: 64, Gmin: 0.1, Gmax: 10}
	mn := reram.MapNetwork(net, opts)

	// 6-bit cells, no faults: accuracy must be preserved.
	undo := mn.ApplyEffectiveWeights()
	analog := metrics.Evaluate(net, test, 64)
	undo()
	if math.Abs(analog-clean) > 0.05 {
		t.Fatalf("6-bit analog deployment lost accuracy: %.3f vs %.3f", analog, clean)
	}

	// Heavy faults hurt; march-test + repair with generous spares heals.
	rng := tensor.NewRNG(9)
	mn.InjectFaults(rng.Stream("fab"), fault.ChenModel(), 0.05)
	undo = mn.ApplyEffectiveWeights()
	faulty := metrics.Evaluate(net, test, 64)
	undo()

	for _, mat := range mn.Mats {
		det := reram.MarchTestMatrix(mat, 1, rng.Stream("march"))
		reram.RepairColumns(mat, det, 32, 0, rng.Stream("spare"))
	}
	if got := mn.NumFaults(); got != 0 {
		t.Fatalf("full repair with ample spares should clear all faults, %d left", got)
	}
	undo = mn.ApplyEffectiveWeights()
	repaired := metrics.Evaluate(net, test, 64)
	undo()
	if repaired < faulty {
		t.Fatalf("repair made things worse: %.3f -> %.3f", faulty, repaired)
	}
	if math.Abs(repaired-analog) > 0.05 {
		t.Fatalf("fully repaired chip should match fault-free analog: %.3f vs %.3f", repaired, analog)
	}
}

// TestEndToEndPrunedFTPipeline prunes, verifies fragility, FT-retrains
// and verifies the sparsity is preserved throughout.
func TestEndToEndPrunedFTPipeline(t *testing.T) {
	cfg := data.SynthConfig{
		Classes: 5, TrainPer: 40, TestPer: 16,
		Channels: 3, Size: 8, Basis: 10, CoefNoise: 0.1,
		NoiseStd: 0.3, ShiftMax: 1, JitterStd: 0.1, Seed: 23,
	}
	train, test := data.Generate(cfg)
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 6, Classes: 5, Seed: 4})
	tc := core.Config{Epochs: 8, Batch: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, Seed: 5}
	if _, err := core.Train(bg, net, train, tc); err != nil {
		t.Fatal(err)
	}

	admm := prune.NewADMM(net.WeightParams(), 0.6, 0.01)
	ac := tc
	ac.Epochs = 6
	ac.ADMM = admm
	ac.ADMMInterval = 2
	if _, err := core.Train(bg, net, train, ac); err != nil {
		t.Fatal(err)
	}
	admm.Finalize()
	if sp := net.Sparsity(); math.Abs(sp-0.6) > 0.05 {
		t.Fatalf("sparsity %.3f after ADMM", sp)
	}

	ftc := tc
	ftc.LR = 0.02
	ftc.Epochs = 8
	if _, err := core.OneShotFT(bg, net, train, ftc, 0.1); err != nil {
		t.Fatal(err)
	}
	if sp := net.Sparsity(); math.Abs(sp-0.6) > 0.05 {
		t.Fatalf("FT training must preserve sparsity, got %.3f", sp)
	}
	if acc := metrics.Evaluate(net, test, 64); acc < 1.5/5 {
		t.Fatalf("pruned+FT accuracy %.3f too low", acc)
	}
	// Pruned weights stay exactly zero even after everything.
	for _, p := range net.WeightParams() {
		if p.Mask == nil {
			continue
		}
		for i, m := range p.Mask.Data() {
			if m == 0 && p.W.Data()[i] != 0 {
				t.Fatal("pruned weight escaped its mask")
			}
		}
	}
}

// TestQuickPresetFullSuite runs every experiment artifact at the quick
// preset in one process — the closest thing to `ftpim all` in a test.
func TestQuickPresetFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is a few seconds; skipped in -short")
	}
	e := experiments.NewEnv("quick", t.TempDir(), nil)
	t1, err := experiments.Table1(bg, e, "c10")
	if err != nil {
		t.Fatal(err)
	}
	if t1.PretrainAcc <= 0 {
		t.Fatal("table1 broken")
	}
	f2, err := experiments.Figure2(bg, e, "c10")
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Series) == 0 {
		t.Fatal("figure2 broken")
	}
	t2, err := experiments.Table2(bg, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Sections) != 2 {
		t.Fatal("table2 broken")
	}
	// Cross-artifact consistency: Figure 2's dense series at rate 0
	// equals Table 1's baseline clean accuracy (same cached model, same
	// eval batch).
	if math.Abs(f2.Series[0].Y[0]-t1.Rows[0].Accs[0]) > 1.5 {
		t.Fatalf("figure2 dense (%.2f) and table1 baseline (%.2f) disagree at rate 0",
			f2.Series[0].Y[0], t1.Rows[0].Accs[0])
	}
}
