// Package ftpim is a from-scratch Go reproduction of "Fault-Tolerant
// Deep Neural Networks for Processing-In-Memory based Autonomous Edge
// Systems" (Wang, Yuan, Ma, Li, Lin, Kailkhura — DATE 2022).
//
// ReRAM crossbar accelerators store DNN weights as cell conductances;
// stuck-at faults (stuck-off SA0 / stuck-on SA1 at the empirical ratio
// 1.75:9.04) deviate the deployed weights and collapse accuracy. The
// paper's remedy — implemented in internal/core — is stochastic
// fault-tolerant training: fuse freshly sampled stuck-at faults into
// the weights every epoch during retraining, either at a fixed target
// rate (one-shot) or up an ascending rate ladder (progressive), plus
// the Stability Score metric SS = AccRetrain/(AccPretrain−AccDefect).
//
// The library layers, bottom-up:
//
//	internal/tensor      float32 tensors, GEMM, im2col
//	internal/nn          layers with manual backprop (conv, BN, residual blocks)
//	internal/optim       SGD + momentum, cosine/step LR schedules
//	internal/data        synthetic CIFAR-like generator + CIFAR binary loader
//	internal/models      CIFAR ResNet-20/32 family, SimpleCNN, MLP
//	internal/fault       weight-level stuck-at fault model (the paper's)
//	internal/reram       circuit-level crossbar simulator, march test, repair
//	internal/prune       magnitude + ADMM pruning
//	internal/core        stochastic FT training, defect eval, Stability Score
//	internal/metrics     accuracy, summaries, SS
//	internal/report      tables, CSV, ASCII plots
//	internal/experiments Table I / Table II / Figure 2 / ablation harness
//
// The cmd/ftpim binary regenerates every table and figure; the
// benchmarks in bench_test.go exercise one experiment per paper
// artifact at the "quick" preset. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package ftpim
