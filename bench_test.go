package ftpim

// One benchmark per paper artifact (Table I ×2 datasets, Table II,
// Figure 2 ×2 datasets) plus the A1–A3 ablations and the hot kernels.
// Experiment benches run at the "quick" preset so `go test -bench=.`
// finishes in minutes; the repro-preset numbers in EXPERIMENTS.md are
// produced by `ftpim all -preset repro`.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/ecoc"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/reram"
	"github.com/ftpim/ftpim/internal/tensor"
)

// mustB unwraps (value, error) in benchmark setup/loops; with a
// background context the core API only errors on cancellation.
func mustB[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// benchEnv builds a quick-preset environment with all models pre-
// trained outside the timed region, so the benchmark measures the
// experiment's evaluation protocol (the part that scales with runs ×
// rates), not one-off training.
func benchEnv(b *testing.B, warm func(e *experiments.Env)) *experiments.Env {
	b.Helper()
	e := experiments.NewEnv("quick", "", nil)
	warm(e)
	b.ResetTimer()
	return e
}

func warmTable1(e *experiments.Env, ds string) {
	mustB(e.Pretrained(bg, ds))
	for _, r := range e.Scale.TrainRates {
		mustB(e.OneShot(bg, ds, r))
		mustB(e.Progressive(bg, ds, r))
	}
}

// BenchmarkTable1CIFAR10 regenerates the CIFAR-10 half of Table I
// (defect accuracy vs testing stuck-at rate for baseline + FT models).
func BenchmarkTable1CIFAR10(b *testing.B) {
	e := benchEnv(b, func(e *experiments.Env) { warmTable1(e, "c10") })
	for i := 0; i < b.N; i++ {
		res := mustB(experiments.Table1(bg, e, "c10"))
		if len(res.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable1CIFAR100 regenerates the CIFAR-100 half of Table I.
func BenchmarkTable1CIFAR100(b *testing.B) {
	e := benchEnv(b, func(e *experiments.Env) { warmTable1(e, "c100") })
	for i := 0; i < b.N; i++ {
		res := mustB(experiments.Table1(bg, e, "c100"))
		if len(res.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2StabilityScore regenerates Table II (accuracy and
// Stability Score of FT models from pretrained and ADMM-pruned
// backbones).
func BenchmarkTable2StabilityScore(b *testing.B) {
	e := benchEnv(b, func(e *experiments.Env) {
		sp := e.Scale.Sparsities[len(e.Scale.Sparsities)-1]
		mustB(e.Pretrained(bg, "c100"))
		mustB(e.PrunedADMM(bg, "c100", sp))
		for _, r := range []float64{0.01, 0.05, 0.1} {
			mustB(e.OneShot(bg, "c100", r))
			mustB(e.Progressive(bg, "c100", r))
			mustB(e.PrunedFT(bg, "c100", sp, r, false))
			mustB(e.PrunedFT(bg, "c100", sp, r, true))
		}
	})
	for i := 0; i < b.N; i++ {
		res := mustB(experiments.Table2(bg, e))
		if len(res.Sections) != 2 {
			b.Fatal("bad table2")
		}
	}
}

// BenchmarkFigure2PrunedFragility regenerates both panels of Figure 2
// (dense vs pruned accuracy under faults, no FT training).
func BenchmarkFigure2PrunedFragility(b *testing.B) {
	e := benchEnv(b, func(e *experiments.Env) {
		for _, ds := range []string{"c10", "c100"} {
			mustB(e.Pretrained(bg, ds))
			for _, sp := range e.Scale.Sparsities {
				mustB(e.PrunedMagnitude(bg, ds, sp))
				mustB(e.PrunedADMM(bg, ds, sp))
			}
		}
	})
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"c10", "c100"} {
			if res := mustB(experiments.Figure2(bg, e, ds)); len(res.Series) == 0 {
				b.Fatal("empty figure")
			}
		}
	}
}

// BenchmarkAblationLadder runs the A1 progressive-ladder-depth study.
func BenchmarkAblationLadder(b *testing.B) {
	e := benchEnv(b, func(e *experiments.Env) { mustB(e.Pretrained(bg, "c10")) })
	for i := 0; i < b.N; i++ {
		// Use a fresh env per iteration is wrong (training cached);
		// the cached path measures the evaluation protocol.
		rows := mustB(experiments.AblationLadder(bg, e, "c10", 0.1, 2))
		if len(rows) != 2 {
			b.Fatal("bad ladder ablation")
		}
	}
}

// BenchmarkAblationResample runs the A2 per-epoch vs per-batch study.
func BenchmarkAblationResample(b *testing.B) {
	e := benchEnv(b, func(e *experiments.Env) { mustB(e.Pretrained(bg, "c10")) })
	for i := 0; i < b.N; i++ {
		res := mustB(experiments.AblationResample(bg, e, "c10", 0.1))
		if res.Rate != 0.1 {
			b.Fatal("bad resample ablation")
		}
	}
}

// BenchmarkAblationCrossbarVsWeight runs the A3 weight-level vs
// circuit-level fault model validation.
func BenchmarkAblationCrossbarVsWeight(b *testing.B) {
	e := benchEnv(b, func(e *experiments.Env) { mustB(e.Pretrained(bg, "c10")) })
	opts := reram.MapOptions{TileRows: 32, TileCols: 32, Levels: 16, Gmin: 0.1, Gmax: 10}
	for i := 0; i < b.N; i++ {
		res := mustB(experiments.AblationCrossbar(bg, e, "c10", 0.02, opts))
		if res.CleanAcc <= 0 {
			b.Fatal("bad crossbar ablation")
		}
	}
}

// --- kernel-level benchmarks -------------------------------------------

// BenchmarkFaultInjection measures one stuck-at injection + undo pass
// over a ResNet-20-scale weight set at Psa=0.01.
func BenchmarkFaultInjection(b *testing.B) {
	net := models.BuildResNet(models.ResNet20(10).Scaled(0.25))
	inj := fault.NewInjector(fault.ChenModel(), core.WeightTensors(net))
	rng := tensor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := inj.Inject(rng, 0.01)
		l.Undo()
	}
}

// BenchmarkResNetForward measures one inference batch through the
// repro-scale ResNet-20.
func BenchmarkResNetForward(b *testing.B) {
	net := models.BuildResNet(models.ResNet20(10).Scaled(0.25))
	x := tensor.New(32, 3, 12, 12)
	tensor.FillNormal(x, tensor.NewRNG(1), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

// BenchmarkTrainEpoch measures one training epoch (forward + backward
// + SGD) of the repro-scale ResNet-20 on 320 synthetic images.
func BenchmarkTrainEpoch(b *testing.B) {
	cfg := data.SynthConfig{
		Classes: 10, TrainPer: 32, TestPer: 1,
		Channels: 3, Size: 12, Basis: 16, CoefNoise: 0.2,
		NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.1, Seed: 3,
	}
	train, _ := data.Generate(cfg)
	net := models.BuildResNet(models.ResNet20(10).Scaled(0.25))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustB(core.Train(bg, net, train, core.Config{
			Epochs: 1, Batch: 32, LR: 0.01, Momentum: 0.9, WeightDecay: 5e-4, Seed: uint64(i) + 1,
		}))
	}
}

// BenchmarkDefectEval measures the paper's defect-accuracy protocol
// (inject → evaluate → undo) for a single run on 120 test images.
func BenchmarkDefectEval(b *testing.B) {
	cfg := data.SynthConfig{
		Classes: 10, TrainPer: 1, TestPer: 12,
		Channels: 3, Size: 12, Basis: 16, CoefNoise: 0.2,
		NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.1, Seed: 4,
	}
	_, test := data.Generate(cfg)
	net := models.BuildResNet(models.ResNet20(10).Scaled(0.25))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustB(core.EvalDefect(bg, net, test, 0.01, core.DefectEval{Runs: 1, Batch: 128, Seed: uint64(i)}))
	}
}

// benchWorkerCounts returns the worker axis for the parallel-vs-serial
// benchmarks: 1 (the serial reference), intermediate powers of two,
// and the machine's core count. On machines with fewer than 4 cores
// the axis still ends at 4 so the parallel path's scheduling overhead
// is measured (oversubscribed) rather than skipped.
func benchWorkerCounts() []int {
	top := runtime.NumCPU()
	if top < 4 {
		top = 4
	}
	counts := []int{1}
	for w := 2; w < top; w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, top)
}

// BenchmarkEvalDefectParallel measures the Monte-Carlo defect-eval
// protocol (the paper's inner loop: clone → inject → evaluate → undo ×
// runs) at increasing worker counts. The workers=1 case is the exact
// legacy serial path; all cases produce bit-identical Summaries, so
// the ratio between them is pure speedup.
func BenchmarkEvalDefectParallel(b *testing.B) {
	s := experiments.ScaleFor("quick")
	net := models.BuildResNet(models.ResNetConfig{
		Depth: s.DepthC10, Classes: s.C10.Classes, InChannels: 3,
		WidthMult: s.Width, Seed: s.Seed,
	})
	_, test := data.Generate(s.C10)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := core.DefectEval{Runs: 8, Batch: 64, Seed: 1, Workers: w}
			for i := 0; i < b.N; i++ {
				mustB(core.EvalDefect(bg, net, test, 0.02, cfg))
			}
		})
	}
}

// BenchmarkEvalDefectSweepParallel measures a full quick-preset Table-I
// defect sweep (all testing rates) serial vs parallel — the acceptance
// workload for the concurrency layer.
func BenchmarkEvalDefectSweepParallel(b *testing.B) {
	s := experiments.ScaleFor("quick")
	net := models.BuildResNet(models.ResNetConfig{
		Depth: s.DepthC10, Classes: s.C10.Classes, InChannels: 3,
		WidthMult: s.Width, Seed: s.Seed,
	})
	_, test := data.Generate(s.C10)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := core.DefectEval{Runs: s.DefectRuns, Batch: 64, Seed: 1, Workers: w}
			for i := 0; i < b.N; i++ {
				mustB(core.EvalDefectSweep(bg, net, test, s.TestRates, cfg))
			}
		})
	}
}

// BenchmarkMatMulParallel measures the row-sharded GEMM kernel against
// the serial reference on a shape above the shard threshold.
func BenchmarkMatMulParallel(b *testing.B) {
	rng := tensor.NewRNG(11)
	a, bb := tensor.New(256, 256), tensor.New(256, 256)
	tensor.FillNormal(a, rng, 0, 1)
	tensor.FillNormal(bb, rng, 0, 1)
	out := tensor.New(256, 256)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			old := tensor.SetWorkers(w)
			defer tensor.SetWorkers(old)
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(out, a, bb)
			}
		})
	}
}

// BenchmarkConvForwardParallel measures the batch-sharded im2col conv
// forward (one ResNet inference batch) against the serial loop.
func BenchmarkConvForwardParallel(b *testing.B) {
	net := models.BuildResNet(models.ResNet20(10).Scaled(0.25))
	x := tensor.New(32, 3, 12, 12)
	tensor.FillNormal(x, tensor.NewRNG(1), 0, 1)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			old := tensor.SetWorkers(w)
			defer tensor.SetWorkers(old)
			for i := 0; i < b.N; i++ {
				net.Forward(x, false)
			}
		})
	}
}

// BenchmarkCrossbarMatVec measures the circuit-level analog dot
// product on a 128×128 differential tile pair.
func BenchmarkCrossbarMatVec(b *testing.B) {
	rng := tensor.NewRNG(5)
	w := tensor.New(128, 128)
	tensor.FillNormal(w, rng, 0, 1)
	m := reram.MapMatrix(w, reram.DefaultMapOptions())
	x := make([]float32, 128)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(x)
	}
}

// BenchmarkMarchTest measures fault detection over a 128×128 array.
func BenchmarkMarchTest(b *testing.B) {
	rng := tensor.NewRNG(6)
	x := reram.NewCrossbar(128, 128, 16, 0.1, 10)
	x.InjectFaults(rng, fault.ChenModel(), 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reram.MarchTest(x, 1, rng)
	}
}

// BenchmarkECOCDecode measures nearest-codeword decoding of one batch
// of 128 bit-logit rows (100 classes, 64-bit codes).
func BenchmarkECOCDecode(b *testing.B) {
	rng := tensor.NewRNG(7)
	cb := ecoc.NewRandomCodebook(100, 64, rng)
	logits := tensor.New(128, 64)
	tensor.FillNormal(logits, rng, 0, 1)
	labels := make([]int, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb.Accuracy(logits, labels)
	}
}
