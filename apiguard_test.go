package ftpim

// API-convention guard: the fault.Scenario registry is the one way to
// select a fault distribution, and fault.NewModel the one way to build
// a custom SA0/SA1 mix. Constructing fault.Model by composite literal
// outside internal/fault bypasses both (and the Validate conventions
// they enforce), so this test walks the whole module with go/parser
// and fails on any such literal. The deprecation shim inside
// internal/fault itself is exempt.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const faultImportPath = "github.com/ftpim/ftpim/internal/fault"

func TestNoFaultModelLiteralsOutsideFaultPackage(t *testing.T) {
	fset := token.NewFileSet()
	var violations []string

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".cache", "testdata", "results":
				return filepath.SkipDir
			}
			if filepath.ToSlash(path) == "internal/fault" {
				return filepath.SkipDir // the shim's home package is exempt
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}

		// Resolve what identifier (if any) names the fault package in
		// this file, honoring renamed imports.
		alias := ""
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != faultImportPath {
				continue
			}
			alias = "fault"
			if imp.Name != nil {
				alias = imp.Name.Name
			}
		}
		if alias == "" || alias == "_" {
			return nil
		}

		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			sel, ok := lit.Type.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != alias || sel.Sel.Name != "Model" {
				return true
			}
			violations = append(violations,
				fset.Position(lit.Pos()).String())
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("fault.Model composite literals outside internal/fault "+
			"(use fault.NewModel, a scenario constructor, or fault.Parse):\n  %s",
			strings.Join(violations, "\n  "))
	}
}
